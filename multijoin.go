// Package multijoin is a reproduction of "Parallel Evaluation of Multi-Join
// Queries" (Annita N. Wilschut, Jan Flokstra, Peter M.G. Apers, SIGMOD 1995).
//
// The paper implements four strategies for parallelizing a multi-join query
// on PRISMA/DB — a shared-nothing, main-memory parallel DBMS — and compares
// them experimentally on up to 80 processors:
//
//   - SP (Sequential Parallel): joins one after another, each on all
//     processors;
//   - SE (Synchronous Execution): independent subtrees in parallel on
//     processor subsets proportional to subtree work;
//   - RD (Segmented Right-Deep): right-deep segments with shared build
//     phases and one probe pipeline per segment;
//   - FP (Full Parallel): every join on private processors, pipelining
//     hash-joins, everything concurrent.
//
// This package is the public facade over the implementation in internal/:
// the Wisconsin chain-query workload generator, the discrete-event-simulated
// PRISMA/DB machine, the two hash-join algorithms, the phase-1 cost
// optimizer, the four phase-2 strategies, and the experiment harness that
// regenerates every figure of the paper's evaluation. See README.md for a
// tour and EXPERIMENTS.md for measured results.
//
// A minimal one-shot execution:
//
//	db, _ := multijoin.NewDatabase(10, 5000, 1995)
//	tree, _ := multijoin.BuildTree(multijoin.WideBushy, 10)
//	q := multijoin.Query{
//		DB: db, Tree: tree, Strategy: multijoin.FP, Procs: 80,
//		Params: multijoin.DefaultParams(),
//	}
//	res, _ := multijoin.Exec(ctx, q) // simulated PRISMA/DB machine
//	fmt.Printf("response time %.2fs\n", res.Time.Seconds())
//
// A long-lived session serving concurrent queries against the resident
// database, with results streamed through a cursor instead of
// materialized — the PRISMA/DB shape, where the machine belongs to the
// system and queries share its processors and memory:
//
//	eng, _ := multijoin.Open(db,
//		multijoin.WithMaxConcurrent(16),
//		multijoin.WithEngineMemoryBudget(256<<20))
//	defer eng.Close()
//	rows, _ := eng.Query(ctx, q, multijoin.WithRuntime("parallel"))
//	for t := range rows.Iter() {
//		use(t)
//	}
//	if err := rows.Err(); err != nil { ... }
package multijoin

import (
	"context"

	"multijoin/internal/core"
	"multijoin/internal/costmodel"
	"multijoin/internal/dist"
	"multijoin/internal/engine"
	"multijoin/internal/ivm"
	"multijoin/internal/jointree"
	"multijoin/internal/optimizer"
	"multijoin/internal/parallel"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
	"multijoin/internal/wisconsin"
	"multijoin/internal/xra"
)

// Core types, re-exported for library users.
type (
	// Query is one parallel multi-join execution request.
	Query = core.Query
	// Result is the unified outcome of executing a query on any runtime:
	// the real join result, the response time (virtual or wall-clock,
	// distinguished by Virtual), and the merged statistics.
	Result = core.Result
	// ExecStats is the unified structural-counter set across runtimes.
	ExecStats = core.Stats
	// ExecOption is a functional option for Exec.
	ExecOption = core.Option
	// ExecOptions is the resolved option set a Runtime receives.
	ExecOptions = core.Options
	// Runtime is one pluggable execution backend for plans. Register
	// implementations with RegisterRuntime and select them per query with
	// WithRuntime. Runtimes stream their result into a Sink; Exec
	// materializes the stream, Engine.Query hands it to a Rows cursor.
	Runtime = core.Runtime
	// Sink is the push half of the streaming Runtime contract: runtimes
	// deliver result batches (with ownership transfer) to a Sink.
	Sink = core.Sink
	// Engine is a long-lived session over one database: it admits
	// concurrent queries, shares processors and one memory budget among
	// them, and streams results through Rows cursors. Create one with
	// Open.
	Engine = core.Engine
	// EngineOption configures an Engine at Open time.
	EngineOption = core.EngineOption
	// Rows is a streaming cursor over one query's result
	// (Next/Tuple/Err/Close, plus All and a range-over-func Iter).
	Rows = core.Rows
	// View is an engine-owned materialized view: the query's FP join
	// network stays resident and Apply maintains the result incrementally
	// from signed base-relation deltas. Create one with Engine.CreateView.
	View = core.View
	// ViewDelta is one base relation's signed change set for View.Apply:
	// tuples to insert and tuples to delete.
	ViewDelta = ivm.Delta
	// ViewApplyResult summarizes one Apply round: delta tuples consumed,
	// unmatched deletes dropped, net result changes, and the new result
	// cardinality.
	ViewApplyResult = ivm.ApplyResult
	// ViewChange is one signed result change (+1 insert, -1 delete) on a
	// view's change stream.
	ViewChange = ivm.Change
	// ViewChanges is a cursor over a view's signed change stream
	// (Next/Change/Close), obtained from View.Changes.
	ViewChanges = ivm.ChangeStream
	// BaseFunc resolves a plan leaf index to its base relation.
	BaseFunc = core.BaseFunc
	// RunResult is the outcome of executing a query on the simulator via
	// the deprecated Run/Verify entry points.
	RunResult = engine.RunResult
	// Stats aggregates the simulator's process, stream and transport
	// counters (used by the deprecated Run/Verify entry points; Exec
	// returns the unified ExecStats instead).
	Stats = engine.Stats
	// Params is the simulated machine model.
	Params = costmodel.Params
	// Database is a generated Wisconsin chain database.
	Database = wisconsin.Database
	// DatabaseConfig configures database generation.
	DatabaseConfig = wisconsin.Config
	// Node is a join-tree node.
	Node = jointree.Node
	// Shape enumerates the five paper query-tree shapes.
	Shape = jointree.Shape
	// Strategy selects one of the four parallelization strategies.
	Strategy = strategy.Kind
	// Plan is a parallel execution plan in the XRA-like representation.
	Plan = xra.Plan
	// Relation is a named multiset of Wisconsin-style tuples.
	Relation = relation.Relation
	// Tuple is one Wisconsin-style tuple.
	Tuple = relation.Tuple
	// Catalog holds chain-query statistics for the phase-1 optimizer.
	Catalog = optimizer.Catalog
	// Space selects the phase-1 plan search space (linear or bushy).
	Space = optimizer.Space
)

// The four strategies of Section 3.
const (
	SP = strategy.SP
	SE = strategy.SE
	RD = strategy.RD
	FP = strategy.FP
)

// The five query shapes of Figure 8.
const (
	LeftLinear  = jointree.LeftLinear
	LeftBushy   = jointree.LeftBushy
	WideBushy   = jointree.WideBushy
	RightBushy  = jointree.RightBushy
	RightLinear = jointree.RightLinear
)

// Optimizer search spaces.
const (
	LinearSpace = optimizer.LinearSpace
	BushySpace  = optimizer.BushySpace
)

// Strategies lists all four strategies in the paper's order.
var Strategies = strategy.Kinds

// Shapes lists all five query shapes in the paper's order.
var Shapes = jointree.Shapes

// DefaultParams returns the calibrated machine model (see EXPERIMENTS.md for
// the calibration).
func DefaultParams() Params { return costmodel.Default() }

// NewDatabase generates a chain of `relations` Wisconsin relations with
// `card` tuples each — the paper's test database (Section 4.1).
func NewDatabase(relations, card int, seed int64) (*Database, error) {
	return wisconsin.Chain(wisconsin.Config{Relations: relations, Cardinality: card, Seed: seed})
}

// BuildTree constructs one of the five paper query-tree shapes over k
// relations.
func BuildTree(s Shape, k int) (*Node, error) { return jointree.BuildShape(s, k) }

// ExampleTree returns the 5-way join tree of Figure 2 that the paper uses to
// illustrate the strategies.
func ExampleTree() *Node { return jointree.Example() }

// DefaultRuntime is the runtime Exec uses when WithRuntime is not given:
// "sim", the discrete-event simulator that reproduces the paper's figures.
const DefaultRuntime = core.DefaultRuntime

// Exec plans the query and executes it on one of the registered runtimes —
// the single execution entry point over every backend. With no options it
// runs on the simulated PRISMA/DB machine and reports virtual response
// time; WithRuntime selects another backend by registry name. The context
// cancels the execution on either runtime: the simulator aborts between
// events, the goroutine runtime tears down every worker without leaks.
//
//	res, err := multijoin.Exec(ctx, q)                       // simulator
//	res, err := multijoin.Exec(ctx, q,
//	        multijoin.WithRuntime("parallel"),
//	        multijoin.WithMaxProcs(8), multijoin.WithVerify())
func Exec(ctx context.Context, q Query, opts ...ExecOption) (*Result, error) {
	return core.Exec(ctx, q, opts...)
}

// WithRuntime selects the execution backend by registry name ("sim",
// "parallel", or any runtime added with RegisterRuntime).
func WithRuntime(name string) ExecOption { return core.WithRuntime(name) }

// WithParams sets the simulated machine model (defaults to the query's own
// Params).
func WithParams(p Params) ExecOption { return core.WithParams(p) }

// WithMaxProcs sets the number of modeled processors on wall-clock
// runtimes: one run-queue dispatcher each, serializing the operation
// processes bound to it (the paper's shared-nothing nodes). Zero means the
// plan's own processor count.
func WithMaxProcs(n int) ExecOption { return core.WithMaxProcs(n) }

// WithBatchTuples sets the transport batch size (pipelining granularity).
func WithBatchTuples(n int) ExecOption { return core.WithBatchTuples(n) }

// WithChannelDepth sets the per-stream buffer capacity, in batches, on
// wall-clock runtimes. The depth is resolved once per run; each process's
// mailbox is additionally sized to depth × its incoming stream count so
// that stream forwarders never block producers of a consumer that has not
// started yet (see parallel.Config.ChannelDepth for the heuristic).
func WithChannelDepth(n int) ExecOption { return core.WithChannelDepth(n) }

// WithMemoryBudget caps the spill runtime's live tuple memory at bytes:
// when pooled batches in flight plus buffered join operands exceed the
// budget, join operands overflow to temp-file partitions and the joins run
// Grace-style, partition-at-a-time:
//
//	res, err := multijoin.Exec(ctx, q,
//	        multijoin.WithRuntime("spill"),
//	        multijoin.WithMemoryBudget(16<<20)) // 16 MiB of live tuples
//
// Zero (the default) applies the spill runtime's 64 MiB default budget. The
// in-memory runtimes ignore the option.
func WithMemoryBudget(bytes int64) ExecOption { return core.WithMemoryBudget(bytes) }

// WithWorkers sets the worker-process count of the "dist" runtime — the
// distributed executor that partitions a plan's operation processes over n
// spawned worker OS processes (plan processor id p on worker p mod n, the
// collect process on the coordinator) and streams every node-crossing
// redistribution edge over loopback TCP:
//
//	res, err := multijoin.Exec(ctx, q,
//	        multijoin.WithRuntime("dist"),
//	        multijoin.WithWorkers(4)) // 4 worker processes
//
// Spawning workers by re-executing the current binary requires that main
// called InitDistWorker first; see its doc. Zero means the dist default
// (2); the single-process runtimes ignore the option.
func WithWorkers(n int) ExecOption { return core.WithWorkers(n) }

// WithVerify checks the result against the sequential reference execution
// and fails on the first discrepancy, wherever the result is materialized:
// Exec, Engine.Exec, or Rows.All. Streaming iteration over a Rows never
// materializes the result and therefore never verifies.
func WithVerify() ExecOption { return core.WithVerify() }

// InitDistWorker is the "dist" runtime's worker entry hook. Call it first
// thing in main (it is safe and cheap when the process is not a worker): in
// an ordinary process it only marks the binary as re-executable for worker
// spawning and returns; in a process the dist coordinator spawned it runs
// the worker protocol to completion and exits, never returning.
// Alternatively, set MJ_DIST_WORKER_BIN to a built cmd/mjworker binary and
// no hook is needed.
func InitDistWorker() { dist.InitWorker() }

// Open starts a long-lived session over db: an Engine that owns the shared
// resources every query it serves draws on — a processor pool capping
// concurrent computation across all in-flight queries (WithEngineProcs),
// one shared live-tuple memory budget that drives spilling when concurrent
// queries exceed it together (WithEngineMemoryBudget), default runtime and
// machine parameters, and an admission queue (WithMaxConcurrent) whose
// per-query wait is reported in ExecStats.QueueWait.
//
//	eng, err := multijoin.Open(db, multijoin.WithMaxConcurrent(16))
//	defer eng.Close()
//	rows, err := eng.Query(ctx, q, multijoin.WithRuntime("parallel"))
//	defer rows.Close()
//	for rows.Next() {
//		t := rows.Tuple()
//		...
//	}
//	if err := rows.Err(); err != nil { ... }
func Open(db *Database, opts ...EngineOption) (*Engine, error) { return core.Open(db, opts...) }

// WithEngineRuntime sets the engine's default runtime by registry name;
// individual queries may still override it with WithRuntime.
func WithEngineRuntime(name string) EngineOption { return core.WithEngineRuntime(name) }

// WithEngineParams sets the machine parameters applied to queries whose own
// Params are zero.
func WithEngineParams(p Params) EngineOption { return core.WithEngineParams(p) }

// WithMaxConcurrent caps how many of the engine's queries may execute at
// once; the rest wait in the admission queue. Zero means 2×GOMAXPROCS,
// negative means unlimited.
func WithMaxConcurrent(n int) EngineOption { return core.WithMaxConcurrent(n) }

// WithEngineProcs sets the size of the engine's shared processor pool — the
// modeled processors that serialize operator work across every in-flight
// query on the wall-clock runtimes. Zero means GOMAXPROCS.
func WithEngineProcs(n int) EngineOption { return core.WithEngineProcs(n) }

// WithEngineMemoryBudget sets the engine's shared live-tuple memory budget
// for spill-runtime queries: concurrent queries account against one meter
// and spill when their combined residency exceeds it. Zero means the spill
// default (64 MiB).
func WithEngineMemoryBudget(bytes int64) EngineOption { return core.WithEngineMemoryBudget(bytes) }

// ErrViewClosed is the error View.Apply and View.Rows return once the view
// was closed — explicitly, or force-closed by engine shutdown.
var ErrViewClosed = ivm.ErrViewClosed

// AdmissionPolicies lists the admission-policy names WithAdmissionPolicy
// accepts: "fifo" (arrival order, the default) and "cost" (shortest
// estimated job first with aging and memory reservation).
var AdmissionPolicies = core.AdmissionPolicies

// WithAdmissionPolicy selects how the engine orders queries waiting for an
// execution slot. "fifo" is the original arrival-order semaphore. "cost"
// admits the query with the smallest calibrated cost-model estimate first
// (aged, so large queries are not starved) and reserves a spill query's
// estimated peak memory from the shared budget at admission; a query whose
// estimate can never fit is admitted without a reservation and relies on
// recursive Grace partitioning to bound its memory.
func WithAdmissionPolicy(name string) EngineOption { return core.WithAdmissionPolicy(name) }

// Calibration holds measured per-tuple costs of this host — the output of
// Calibrate — and converts the cost model's abstract work units into
// predicted wall time. Pass it to Open via WithCalibration so cost-based
// admission orders queries by realistic estimates.
type Calibration = costmodel.Calibration

// CalibrateOptions tunes the calibration sweep (zero values mean defaults).
type CalibrateOptions = costmodel.CalibrateOptions

// Calibrate measures this host's per-tuple hash, probe and transport costs
// with short micro-runs and fits the cost model's unit scale to them:
//
//	cal, err := multijoin.Calibrate(multijoin.CalibrateOptions{})
//	eng, err := multijoin.Open(db, multijoin.WithCalibration(cal),
//	        multijoin.WithAdmissionPolicy("cost"))
func Calibrate(opt CalibrateOptions) (Calibration, error) { return costmodel.Calibrate(opt) }

// WithCalibration installs measured per-tuple costs (see Calibrate) as the
// engine's wall-time scale for admission estimates.
func WithCalibration(c Calibration) EngineOption { return core.WithCalibration(c) }

// RegisterRuntime adds an execution backend to the by-name registry used by
// Exec's WithRuntime option. Like database/sql driver registration it is
// meant for init time and panics on duplicate or empty names.
func RegisterRuntime(name string, rt Runtime) { core.RegisterRuntime(name, rt) }

// LookupRuntime resolves a registry name to its runtime; the error for an
// unknown name lists every registered runtime.
func LookupRuntime(name string) (Runtime, error) { return core.LookupRuntime(name) }

// RuntimeNames lists every registered runtime name, sorted.
func RuntimeNames() []string { return core.RuntimeNames() }

// Parallel-runtime types: the goroutine executor that runs the same plans
// with real concurrency instead of the virtual clock.
type (
	// ParallelConfig parameterizes the goroutine runtime: processor cap,
	// batch size, stream channel depth.
	//
	// Deprecated: pass WithMaxProcs/WithBatchTuples/WithChannelDepth to
	// Exec instead.
	ParallelConfig = parallel.Config
	// ParallelResult is the outcome of a goroutine-parallel execution:
	// the real join result, wall-clock time, and structural counters.
	//
	// Deprecated: Exec returns the unified Result for every runtime.
	ParallelResult = parallel.RunResult
	// ParallelStats aggregates goroutine, stream and transport counters.
	//
	// Deprecated: Exec returns the unified ExecStats for every runtime.
	ParallelStats = parallel.Stats
)

// Run plans and executes the query on the simulated PRISMA/DB machine.
//
// Deprecated: use Exec, which adds context cancellation and runtime
// selection, or Engine.Query for long-lived sessions with streaming
// results; Run is equivalent to Exec(context.Background(), q) with the
// engine-specific result type.
func Run(q Query) (*RunResult, error) { return q.Run() }

// ExecuteParallel plans the query and executes the plan with real goroutine
// concurrency: one worker goroutine per operation process, one buffered
// channel per tuple stream (n×m per redistribution edge), and a semaphore
// capping concurrent computation at ParallelConfig.MaxProcs processors. It
// produces the same result multiset as Run and Reference, measured in wall
// time instead of virtual time.
//
// Deprecated: use Exec with WithRuntime("parallel"), or Engine.Query for
// sessions that share processors and memory across concurrent queries.
func ExecuteParallel(q Query, cfg ParallelConfig) (*ParallelResult, error) {
	return core.ExecuteParallel(q, cfg)
}

// VerifyParallel runs ExecuteParallel and checks the result against the
// sequential reference execution.
//
// Deprecated: use Exec with WithRuntime("parallel") and WithVerify.
func VerifyParallel(q Query, cfg ParallelConfig) (*ParallelResult, error) {
	return core.VerifyParallel(q, cfg)
}

// HostCap bounds a plan's processor count by the host's real core count —
// the WithMaxProcs cap to use when executing plans generated for machines
// larger than this one. Plans keep their full processor count; only
// concurrent computation is capped.
func HostCap(procs int) int { return parallel.HostCap(procs) }

// Verify runs the query and checks the result against the sequential
// reference execution.
//
// Deprecated: use Exec with WithVerify (or Engine.Exec with WithVerify
// under a session).
func Verify(q Query) (*RunResult, error) { return core.Verify(q) }

// Reference evaluates the tree sequentially — the correctness oracle.
func Reference(db *Database, tree *Node) *Relation { return core.Reference(db, tree) }

// Optimize runs phase 1 of the two-phase optimization: it returns a
// minimal-total-cost join tree for the catalog within the given search
// space.
func Optimize(c Catalog, space Space) (*Node, float64, error) {
	res, err := optimizer.Optimize(c, space)
	if err != nil {
		return nil, 0, err
	}
	return res.Tree, res.Cost, nil
}

// UniformCatalog returns the paper's regular catalog: k relations of equal
// cardinality with 1:1 joins.
func UniformCatalog(k int, card float64) Catalog { return optimizer.Uniform(k, card) }

// TwoPhase runs the complete pipeline of Section 1.2: phase 1 picks the
// cheapest tree, phase 2 parallelizes and executes it.
func TwoPhase(db *Database, space Space, s Strategy, procs int, params Params) (*Node, *RunResult, error) {
	return core.TwoPhase(db, space, s, procs, params)
}

// Advice-related types: the paper's Section 5 guidelines as an API.
type (
	// Advice is a strategy recommendation.
	Advice = core.Advice
	// AdviseInput describes the situation to recommend a strategy for.
	AdviseInput = core.AdviseInput
)

// Advise applies the paper's Section 5 guidelines: SP for small machines or
// memory-constrained nodes, SE for wide bushy trees on large problems, RD
// for right-oriented trees (mirroring left-oriented ones first, which is
// free), FP otherwise.
func Advise(in AdviseInput) (Advice, error) { return core.Advise(in) }

// EncodePlan renders a plan in the textual XRA format.
func EncodePlan(p *Plan) string { return xra.Encode(p) }

// ParsePlan reads a plan in the textual XRA format.
func ParsePlan(text string) (*Plan, error) { return xra.Parse(text) }
