package multijoin_test

import (
	"strings"
	"testing"

	"multijoin"
)

func TestFacadeEndToEnd(t *testing.T) {
	db, err := multijoin.NewDatabase(6, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.RightBushy, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range multijoin.Strategies {
		res, err := multijoin.Verify(multijoin.Query{
			DB: db, Tree: tree, Strategy: s, Procs: 10,
			Params: multijoin.DefaultParams(),
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Stats.ResultTuples != 300 {
			t.Errorf("%v: %d result tuples", s, res.Stats.ResultTuples)
		}
	}
}

func TestFacadeTwoPhase(t *testing.T) {
	db, err := multijoin.NewDatabase(8, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	tree, res, err := multijoin.TwoPhase(db, multijoin.BushySpace, multijoin.FP, 12, multijoin.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil || res.Stats.ResultTuples != 200 {
		t.Errorf("two-phase result wrong")
	}
}

func TestFacadeOptimize(t *testing.T) {
	cat := multijoin.UniformCatalog(6, 100)
	tree, cost, err := multijoin.Optimize(cat, multijoin.LinearSpace)
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil || cost <= 0 {
		t.Error("optimize returned nothing")
	}
}

func TestFacadePlanTextRoundTrip(t *testing.T) {
	db, err := multijoin.NewDatabase(5, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := multijoin.Query{
		DB: db, Tree: multijoin.ExampleTree(), Strategy: multijoin.RD, Procs: 10,
		Params: multijoin.DefaultParams(),
	}
	plan, err := q.Plan()
	if err != nil {
		t.Fatal(err)
	}
	text := multijoin.EncodePlan(plan)
	if !strings.Contains(text, "strategy=RD") {
		t.Errorf("encoded plan missing strategy:\n%s", text)
	}
	back, err := multijoin.ParsePlan(text)
	if err != nil {
		t.Fatal(err)
	}
	if multijoin.EncodePlan(back) != text {
		t.Error("plan text round trip unstable")
	}
}

func TestFacadeReference(t *testing.T) {
	db, err := multijoin.NewDatabase(4, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.LeftLinear, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref := multijoin.Reference(db, tree)
	if ref.Card() != 150 {
		t.Errorf("reference card %d", ref.Card())
	}
}

func TestFacadeAdvise(t *testing.T) {
	tree, err := multijoin.BuildTree(multijoin.RightBushy, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := multijoin.Advise(multijoin.AdviseInput{Tree: tree, Procs: 80, Card: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != multijoin.RD {
		t.Errorf("right bushy on 80 procs: advised %v, want RD", a.Strategy)
	}
	if a.Reason == "" {
		t.Error("advice must carry a reason")
	}
}
