package multijoin_test

import (
	"context"
	"strings"
	"testing"

	"multijoin"
)

// TestFacadeEndToEnd exercises the unified Exec API on every registered
// runtime: every strategy, verified against the sequential reference.
func TestFacadeEndToEnd(t *testing.T) {
	db, err := multijoin.NewDatabase(6, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.RightBushy, 6)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, rt := range multijoin.RuntimeNames() {
		for _, s := range multijoin.Strategies {
			res, err := multijoin.Exec(ctx, multijoin.Query{
				DB: db, Tree: tree, Strategy: s, Procs: 10,
				Params: multijoin.DefaultParams(),
			}, multijoin.WithRuntime(rt), multijoin.WithVerify())
			if err != nil {
				t.Fatalf("%s/%v: %v", rt, s, err)
			}
			if res.Runtime != rt {
				t.Errorf("%s/%v: result names runtime %q", rt, s, res.Runtime)
			}
			if res.Virtual != (rt == "sim") {
				t.Errorf("%s/%v: Virtual = %v", rt, s, res.Virtual)
			}
			if res.Stats.ResultTuples != 300 {
				t.Errorf("%s/%v: %d result tuples", rt, s, res.Stats.ResultTuples)
			}
			if res.Time <= 0 {
				t.Errorf("%s/%v: non-positive time %v", rt, s, res.Time)
			}
		}
	}
}

// TestFacadeExecUnknownRuntime checks that the registry error names the
// registered runtimes.
func TestFacadeExecUnknownRuntime(t *testing.T) {
	db, err := multijoin.NewDatabase(4, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.LeftLinear, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := multijoin.Query{DB: db, Tree: tree, Strategy: multijoin.FP, Procs: 4, Params: multijoin.DefaultParams()}
	_, err = multijoin.Exec(context.Background(), q, multijoin.WithRuntime("warp-drive"))
	if err == nil {
		t.Fatal("unknown runtime must fail")
	}
	for _, want := range []string{"warp-drive", "sim", "parallel"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestFacadeDeprecatedWrappers keeps the pre-Exec entry points compiling
// and correct: they are thin wrappers over the same runtimes.
func TestFacadeDeprecatedWrappers(t *testing.T) {
	db, err := multijoin.NewDatabase(5, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.WideBushy, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := multijoin.Query{DB: db, Tree: tree, Strategy: multijoin.FP, Procs: 8, Params: multijoin.DefaultParams()}
	simRes, err := multijoin.Verify(q)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := multijoin.VerifyParallel(q, multijoin.ParallelConfig{MaxProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if simRes.Stats.ResultTuples != parRes.Stats.ResultTuples {
		t.Errorf("wrapper results disagree: sim %d vs parallel %d tuples",
			simRes.Stats.ResultTuples, parRes.Stats.ResultTuples)
	}
}

func TestFacadeTwoPhase(t *testing.T) {
	db, err := multijoin.NewDatabase(8, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	tree, res, err := multijoin.TwoPhase(db, multijoin.BushySpace, multijoin.FP, 12, multijoin.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil || res.Stats.ResultTuples != 200 {
		t.Errorf("two-phase result wrong")
	}
}

func TestFacadeOptimize(t *testing.T) {
	cat := multijoin.UniformCatalog(6, 100)
	tree, cost, err := multijoin.Optimize(cat, multijoin.LinearSpace)
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil || cost <= 0 {
		t.Error("optimize returned nothing")
	}
}

func TestFacadePlanTextRoundTrip(t *testing.T) {
	db, err := multijoin.NewDatabase(5, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := multijoin.Query{
		DB: db, Tree: multijoin.ExampleTree(), Strategy: multijoin.RD, Procs: 10,
		Params: multijoin.DefaultParams(),
	}
	plan, err := q.Plan()
	if err != nil {
		t.Fatal(err)
	}
	text := multijoin.EncodePlan(plan)
	if !strings.Contains(text, "strategy=RD") {
		t.Errorf("encoded plan missing strategy:\n%s", text)
	}
	back, err := multijoin.ParsePlan(text)
	if err != nil {
		t.Fatal(err)
	}
	if multijoin.EncodePlan(back) != text {
		t.Error("plan text round trip unstable")
	}
}

func TestFacadeReference(t *testing.T) {
	db, err := multijoin.NewDatabase(4, 150, 5)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := multijoin.BuildTree(multijoin.LeftLinear, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref := multijoin.Reference(db, tree)
	if ref.Card() != 150 {
		t.Errorf("reference card %d", ref.Card())
	}
}

func TestFacadeAdvise(t *testing.T) {
	tree, err := multijoin.BuildTree(multijoin.RightBushy, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := multijoin.Advise(multijoin.AdviseInput{Tree: tree, Procs: 80, Card: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Strategy != multijoin.RD {
		t.Errorf("right bushy on 80 procs: advised %v, want RD", a.Strategy)
	}
	if a.Reason == "" {
		t.Error("advice must carry a reason")
	}
}
