# Single source of truth for the commands CI and humans run.
GO ?= go

.PHONY: all build lint test bench bench-baseline examples fuzz-smoke pooldebug spill-check throughput-smoke dist-smoke calibrate-smoke serve-smoke ivm-smoke clean

all: build lint test

build:
	$(GO) build ./...

# Lint fails on unformatted files (gofmt prints their names) and vet errors.
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# Spill equivalence under a forcing budget (a subset of `make test`, pinned
# as its own target so CI shows the out-of-core path exercised on every
# push): every strategy on the spill runtime with a budget small enough
# that every join spills at least one partition, plus the Grace join
# differential tests, all under -race.
spill-check:
	$(GO) test -race -run 'TestSpill|TestGrace' ./internal/core ./internal/hashjoin

# Fuzz smoke: 30 seconds each of the randomized differential harnesses —
# seeded sizes, skewed cardinalities, all strategies and shapes. The exec
# harness asserts the sim, parallel, spill and dist (two worker processes)
# runtimes reproduce the sequential reference checksum multiset; the view
# harness asserts incremental maintenance under random signed delta
# scripts stays multiset-equal to recompute-from-scratch, with unmatched
# deletes predicted exactly.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzExecEquivalence -fuzztime 30s ./internal/testutil
	$(GO) test -run '^$$' -fuzz FuzzViewEquivalence -fuzztime 30s ./internal/testutil

# IVM smoke: create a materialized view, push mixed signed delta rounds
# through its resident FP network, and verify the maintained result against
# a from-scratch recompute of the sequential reference after every round,
# under -race.
ivm-smoke:
	$(GO) test -race -run 'TestViewSmoke' -count=1 ./internal/ivm

# Pool-discipline check: the relation and hashjoin tests (the columnar
# codec round-trip property and the ProbeBatchInto differential among
# them) with the pooldebug double-Put / use-after-Put detector armed
# (poisoned batches verified on every Get).
pooldebug:
	$(GO) test -tags pooldebug -race ./internal/relation ./internal/hashjoin

# Throughput smoke: one shared Engine serving concurrent mixed-strategy
# queries across the parallel and spill runtimes, results drained through
# streaming Rows cursors and checked against the sequential reference —
# the session layer exercised end to end on a small workload.
throughput-smoke:
	$(GO) run ./cmd/mjbench -fig throughput -concurrency 4 -card5k 500

# Dist smoke: the multi-process runtime end to end on a small workload —
# all four strategies across two loopback worker processes, compared
# against the single-process goroutine runtime (every run inside is also
# covered, verified and leak-audited, by `go test ./internal/dist`).
dist-smoke:
	$(GO) run ./cmd/mjbench -fig dist -workers 2 -card5k 500

# Serve smoke: the TCP serving layer end to end — mjserve on an ephemeral
# port, driven by mjload with a mixed closed-loop burst (20% of queries
# cancelled mid-stream) and an open-loop step, then SIGTERM while a third
# load run is still streaming. mjserve exits 0 only when the graceful
# drain left the engine's shared memory meter at zero; the recipe also
# greps the "drained clean" line so a truncated log fails loudly.
serve-smoke:
	@mkdir -p .bin
	$(GO) build -o .bin/mjserve ./cmd/mjserve
	$(GO) build -o .bin/mjload ./cmd/mjload
	@set -e; \
	rm -f .bin/mjserve.log .bin/mjload-bg.log; \
	.bin/mjserve -addr 127.0.0.1:0 -card 1000 -policy cost -budget 4MiB > .bin/mjserve.log 2>&1 & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's/mjserve: listening on //p' .bin/mjserve.log); \
		[ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "mjserve did not start:"; cat .bin/mjserve.log; exit 1; }; \
	.bin/mjload -addr $$addr -conns 16 -duration 3s -cancel 0.2; \
	.bin/mjload -addr $$addr -conns 8 -duration 2s -qps 30; \
	.bin/mjload -addr $$addr -conns 8 -duration 10s > .bin/mjload-bg.log 2>&1 & \
	bg=$$!; \
	sleep 2; \
	kill -TERM $$pid; \
	wait $$pid; \
	trap - EXIT; \
	wait $$bg || true; \
	grep -q "drained clean" .bin/mjserve.log || { echo "no clean drain:"; cat .bin/mjserve.log; exit 1; }; \
	echo "serve smoke passed (graceful drain, meter live = 0)"

# Calibration smoke: a tiny cost-model calibration sweep on the CI host,
# asserting it produces finite, positive per-action costs and a monotone
# wall-time estimator — the measurement feeding cost-based admission.
calibrate-smoke:
	$(GO) test -race -run 'TestCalibrateSmoke' -count=1 ./internal/costmodel

# Bench smoke: one iteration of every benchmark, with the sim-vs-parallel
# comparison captured as test2json lines in BENCH_parallel.json and the
# allocation benchmarks in BENCH_alloc.json, gated against the checked-in
# baseline (fails on a >20% allocs/op regression or an ns/op regression
# past each benchmark's recorded tolerance). Under GitHub Actions,
# benchcheck also appends a baseline-vs-run diff table of allocs/op, ns/op
# and B/op to $GITHUB_STEP_SUMMARY.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -json . > BENCH_parallel.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_parallel.json | sed 's/"Output":"//;s/\\t/\t/g;s/\\n//' || true
	@echo "wrote BENCH_parallel.json"
	$(GO) test -run '^$$' -bench 'BenchmarkExecAlloc|BenchmarkExecStreamAlloc|BenchmarkEngineQueryCached|BenchmarkViewApplyDelta|BenchmarkHashTable' -benchtime 1x -benchmem -json . ./internal/hashjoin > BENCH_alloc.json
	@echo "wrote BENCH_alloc.json"
	$(GO) run ./cmd/benchcheck -in BENCH_alloc.json -baseline bench_alloc_baseline.txt

# Re-record the checked-in performance baseline after an intentional
# change: runs the gated benchmarks under the same conditions CI measures
# (-benchtime 1x, the first iteration paying pool warm-up) and rewrites
# bench_alloc_baseline.txt in place. Each baseline row is
# `BenchmarkName allocs/op ns/op B/op ns-tolerance`; recording refreshes
# the three measured columns and preserves each benchmark's ns/op
# tolerance.
bench-baseline:
	$(GO) test -run '^$$' -bench 'BenchmarkExecAlloc|BenchmarkExecStreamAlloc|BenchmarkEngineQueryCached|BenchmarkViewApplyDelta' -benchtime 1x -benchmem -json . > BENCH_alloc.json
	$(GO) run ./cmd/benchcheck -in BENCH_alloc.json -record bench_alloc_baseline.txt

# Examples smoke: build every example binary, then run each one to
# completion (their output doubles as an end-to-end check of the facade).
examples:
	@mkdir -p .bin
	$(GO) build -o .bin/ ./examples/...
	@set -e; for b in .bin/*; do echo "== $$b"; "$$b" > /dev/null; done
	@echo "all examples ran"

clean:
	rm -f BENCH_parallel.json BENCH_alloc.json
	rm -rf .bin
